//! Strategy trait and combinators for the proptest stand-in.

use core::ops::Range;
use rand::{rngs::StdRng, Rng};

/// How many times a filter may reject before the case aborts. Matches the
/// spirit of upstream proptest's global rejection cap.
const MAX_FILTER_TRIES: usize = 1_000;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy discarding values for which `pred` is false,
    /// regenerating until one passes (bounded by an internal retry cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.start as f64..self.end as f64) as f32
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected {MAX_FILTER_TRIES} consecutive inputs",
            self.reason
        );
    }
}

/// Strategy over all normal `f64` values; see `prop::num::f64::NORMAL`.
#[derive(Debug, Clone, Copy)]
pub struct NormalF64;

impl Strategy for NormalF64 {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        loop {
            // Uniform sign and mantissa with an exponent biased toward
            // human-scale magnitudes, then reject anything non-normal.
            let sign = if rng.gen_range(0u8..2) == 0 {
                1.0
            } else {
                -1.0
            };
            let exp = rng.gen_range(-300i32..300);
            let mantissa = rng.gen_range(1.0f64..2.0);
            let v = sign * mantissa * 10f64.powi(exp);
            if v.is_normal() {
                return v;
            }
        }
    }
}

/// Strategy over arbitrary `f64` values; see `prop::num::f64::ANY`.
#[derive(Debug, Clone, Copy)]
pub struct AnyF64;

impl Strategy for AnyF64 {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        // Mix raw bit patterns (hitting NaN/inf/subnormals) with
        // human-scale normals so both regimes are exercised.
        match rng.gen_range(0u8..4) {
            0 => f64::from_bits(rng.next_u64()),
            1 => {
                const SPECIALS: [f64; 7] = [
                    0.0,
                    -0.0,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::NAN,
                    f64::MIN_POSITIVE,
                    f64::MAX,
                ];
                SPECIALS[rng.gen_range(0usize..SPECIALS.len())]
            }
            _ => NormalF64.generate(rng),
        }
    }
}

/// See [`crate::prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
