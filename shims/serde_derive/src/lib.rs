//! `#[derive(Serialize, Deserialize)]` for the hermetic serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). The parser covers the shapes the
//! workspace actually derives: named/tuple/unit structs, enums with
//! unit/newtype/tuple/struct variants, simple type generics, and the
//! `#[serde(transparent)]` marker (inert beyond newtypes, which already
//! serialize transparently).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    generics: Vec<String>,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Outer attributes (docs, derives already stripped, #[serde(...)]).
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 2; // '#' + [...] group
    }
    // Visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum keyword, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    // Generic parameters: collect type-parameter idents, skip bounds.
    let mut generics = Vec::new();
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut at_param_start = true;
        while depth > 0 {
            match &tokens[i] {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => at_param_start = true,
                    _ => {}
                },
                TokenTree::Ident(id) if depth == 1 && at_param_start => {
                    generics.push(id.to_string());
                    at_param_start = false;
                }
                _ => {}
            }
            i += 1;
        }
    }

    let kind = if keyword == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => ItemKind::UnitStruct,
        }
    } else if keyword == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    } else {
        panic!("derive supports only structs and enums, found {keyword}");
    };

    Item {
        name,
        generics,
        kind,
    }
}

/// Field names from a named-fields brace body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Skip ':' and the type, up to the next top-level comma. Generic
        // arguments contribute '<'/'>' puncts; commas inside them are not
        // field separators.
        let mut angle = 0isize;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple-struct/tuple-variant paren body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle = 0isize;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    fields += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to the next top-level comma (covers discriminants).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// ---- code generation -------------------------------------------------

impl Item {
    /// `Name` or `Name<A, B>`.
    fn self_ty(&self) -> String {
        if self.generics.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.generics.join(", "))
        }
    }

    fn ser_impl_header(&self) -> String {
        if self.generics.is_empty() {
            format!("impl ::serde::Serialize for {}", self.name)
        } else {
            let params: Vec<String> = self
                .generics
                .iter()
                .map(|g| format!("{g}: ::serde::Serialize"))
                .collect();
            format!(
                "impl<{}> ::serde::Serialize for {}",
                params.join(", "),
                self.self_ty()
            )
        }
    }

    fn de_impl_header(&self) -> String {
        if self.generics.is_empty() {
            format!("impl<'de> ::serde::Deserialize<'de> for {}", self.name)
        } else {
            let params: Vec<String> = self
                .generics
                .iter()
                .map(|g| format!("{g}: ::serde::Deserialize<'de>"))
                .collect();
            format!(
                "impl<'de, {}> ::serde::Deserialize<'de> for {}",
                params.join(", "),
                self.self_ty()
            )
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.push((String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut m: Vec<(String, ::serde::Value)> = Vec::new(); {} ::serde::Value::Map(m)",
                pushes.join(" ")
            )
        }
        // Newtypes serialize transparently, matching upstream serde.
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_variant_ser_arm(&item.name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {} }} }}",
        item.ser_impl_header(),
        body
    )
}

fn gen_variant_ser_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("{enum_name}::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),")
        }
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Map(vec![(String::from(\"{vname}\"), {inner})]),",
                binds.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields.join(", ");
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("m.push((String::from(\"{f}\"), ::serde::Serialize::to_value({f})));")
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binds} }} => {{ \
                   let mut m: Vec<(String, ::serde::Value)> = Vec::new(); {} \
                   ::serde::Value::Map(vec![(String::from(\"{vname}\"), ::serde::Value::Map(m))]) }},",
                pushes.join(" ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(m, \"{f}\"))?")
                })
                .collect();
            format!(
                "let m = value.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?; \
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        ItemKind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                .collect();
            format!(
                "let s = value.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?; \
                 if s.len() != {n} {{ return Err(::serde::Error::custom(\"wrong arity for {name}\")); }} \
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        ItemKind::UnitStruct => format!("Ok({name})"),
        ItemKind::Enum(variants) => gen_enum_de(name, variants),
    };
    format!(
        "{} {{ fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{ {} }} }}",
        item.de_impl_header(),
        body
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            let build = match &v.shape {
                VariantShape::Unit => return None,
                VariantShape::Tuple(1) => format!(
                    "Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?))"
                ),
                VariantShape::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                        .collect();
                    format!(
                        "let s = inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{vname}\"))?; \
                         if s.len() != {n} {{ return Err(::serde::Error::custom(\"wrong arity for {name}::{vname}\")); }} \
                         Ok({name}::{vname}({}))",
                        inits.join(", ")
                    )
                }
                VariantShape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::field(m, \"{f}\"))?"
                            )
                        })
                        .collect();
                    format!(
                        "let m = inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}::{vname}\"))?; \
                         Ok({name}::{vname} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            Some(format!("\"{vname}\" => {{ {build} }}"))
        })
        .collect();
    format!(
        "match value {{ \
           ::serde::Value::Str(s) => match s.as_str() {{ \
             {} \
             other => Err(::serde::Error::custom(format!(\"unknown variant {{other}} of {name}\"))), \
           }}, \
           ::serde::Value::Map(m) if m.len() == 1 => {{ \
             let (tag, inner) = &m[0]; \
             match tag.as_str() {{ \
               {} \
               other => Err(::serde::Error::custom(format!(\"unknown variant {{other}} of {name}\"))), \
             }} \
           }}, \
           _ => Err(::serde::Error::custom(\"expected variant tag for {name}\")), \
         }}",
        unit_arms.join(" "),
        data_arms.join(" ")
    )
}
