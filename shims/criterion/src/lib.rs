//! Hermetic stand-in for `criterion`.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal wall-clock harness with the same macro and builder surface
//! the benches use: [`criterion_group!`]/[`criterion_main!`],
//! `Criterion::default().sample_size(n)`, `bench_function`, and
//! `Bencher::iter`. Results print mean/min/max per-iteration times; there
//! is no statistical analysis, plotting, or CLI argument handling.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark harness handle passed to every group target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a named benchmark and prints per-iteration timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.bench_stats(name, f);
        self
    }

    /// Like [`bench_function`](Self::bench_function), but also returns the
    /// collected statistics so callers (perf harnesses, regression gates)
    /// can act on the numbers instead of scraping stdout.
    pub fn bench_stats<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> BenchStats {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let stats = BenchStats::from_samples(&bencher.samples);
        if stats.samples == 0 {
            println!("{name}: no samples collected");
        } else {
            println!(
                "{name}: mean {} min {} max {} ({} samples)",
                format_ns(stats.mean_ns),
                format_ns(stats.min_ns),
                format_ns(stats.max_ns),
                stats.samples
            );
        }
        stats
    }
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchStats {
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

impl BenchStats {
    fn from_samples(s: &[f64]) -> Self {
        if s.is_empty() {
            return Self {
                mean_ns: 0.0,
                min_ns: 0.0,
                max_ns: 0.0,
                samples: 0,
            };
        }
        Self {
            mean_ns: s.iter().sum::<f64>() / s.len() as f64,
            min_ns: s.iter().cloned().fold(f64::INFINITY, f64::min),
            max_ns: s.iter().cloned().fold(0.0f64, f64::max),
            samples: s.len(),
        }
    }

    /// Mean per-iteration time in seconds.
    pub fn mean_s(&self) -> f64 {
        self.mean_ns / 1e9
    }

    /// Fastest iteration in seconds — the usual basis for speedup ratios,
    /// being the least scheduler-noise-contaminated sample.
    pub fn min_s(&self) -> f64 {
        self.min_ns / 1e9
    }
}

/// Times `routine` directly: one warm-up call, then `samples` timed
/// iterations. The free-function twin of [`Criterion::bench_stats`] for
/// harnesses that don't want the builder or the printing.
pub fn measure<O>(samples: usize, mut routine: impl FnMut() -> O) -> BenchStats {
    let mut collected = Vec::with_capacity(samples.max(1));
    black_box(routine());
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        black_box(routine());
        collected.push(start.elapsed().as_nanos() as f64);
    }
    BenchStats::from_samples(&collected)
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample, recording per-iteration nanoseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed region.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Groups benchmark targets under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("tiny", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group!(
        name = probe;
        config = Criterion::default().sample_size(3);
        targets = tiny_bench
    );

    #[test]
    fn group_runs() {
        probe();
    }

    #[test]
    fn measure_returns_populated_stats() {
        let stats = measure(4, || (0..1000u64).sum::<u64>());
        assert_eq!(stats.samples, 4);
        assert!(stats.min_ns > 0.0);
        assert!(stats.min_ns <= stats.mean_ns && stats.mean_ns <= stats.max_ns);
        assert!((stats.mean_s() - stats.mean_ns / 1e9).abs() < f64::EPSILON);
    }

    #[test]
    fn bench_stats_matches_sample_size() {
        let mut c = Criterion::default().sample_size(3);
        let stats = c.bench_stats("stats-probe", |b| b.iter(|| (0..100u64).product::<u64>()));
        assert_eq!(stats.samples, 3);
    }
}
