//! Hermetic stand-in for `criterion`.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal wall-clock harness with the same macro and builder surface
//! the benches use: [`criterion_group!`]/[`criterion_main!`],
//! `Criterion::default().sample_size(n)`, `bench_function`, and
//! `Bencher::iter`. Results print mean/min/max per-iteration times; there
//! is no statistical analysis, plotting, or CLI argument handling.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark harness handle passed to every group target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a named benchmark and prints per-iteration timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let s = &bencher.samples;
        if s.is_empty() {
            println!("{name}: no samples collected");
        } else {
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = s.iter().cloned().fold(0.0f64, f64::max);
            println!(
                "{name}: mean {} min {} max {} ({} samples)",
                format_ns(mean),
                format_ns(min),
                format_ns(max),
                s.len()
            );
        }
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample, recording per-iteration nanoseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed region.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Groups benchmark targets under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("tiny", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group!(
        name = probe;
        config = Criterion::default().sample_size(3);
        targets = tiny_bench
    );

    #[test]
    fn group_runs() {
        probe();
    }
}
