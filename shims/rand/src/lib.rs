//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small API subset it actually uses: [`StdRng`], [`SeedableRng`] and
//! [`Rng::gen_range`] over primitive ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically strong, fully
//! deterministic per seed, and `Clone`/`Debug` like the original.
//!
//! Streams differ from upstream `rand`'s ChaCha-based `StdRng`; only
//! seed-determinism and distribution quality are preserved, which is the
//! contract the simulation layers rely on.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator trait: raw words plus uniform ranges.
pub trait Rng {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open, `low..high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<G: Rng>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = rng.gen_f64();
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end` for tiny spans.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    pub use super::StdRng;
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical xoshiro seeding procedure.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
        // MIN_POSITIVE lower bound (used by the Box–Muller helpers) never
        // returns zero, so ln() stays finite.
        for _ in 0..10_000 {
            let v = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn int_range_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
