//! Hermetic stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace vendors
//! a self-contained serialization framework under the same crate name:
//! a JSON-shaped [`Value`] tree, [`Serialize`]/[`Deserialize`] traits over
//! it, and `#[derive(Serialize, Deserialize)]` macros (see the
//! `serde_derive` shim). The `serde_json` shim renders [`Value`] to JSON
//! text and back.
//!
//! Supported surface (what the workspace uses):
//!
//! * named/tuple/unit structs, `#[serde(transparent)]` newtypes,
//! * enums with unit, newtype, tuple and struct variants
//!   (externally tagged, like serde's default),
//! * primitives, `String`, `Option<T>`, `Vec<T>` and small tuples,
//! * single-type-parameter generics such as `QRange<Q>`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value: the wire model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numbers are `f64`, like JSON itself).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object with insertion order preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Looks up `key` in an object's entries, yielding `Null` when absent so
/// `Option` fields deserialize to `None`. Used by derived code.
pub fn field<'a>(map: &'a [(String, Value)], key: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
///
/// The lifetime parameter mirrors upstream serde's signature so bounds
/// like `for<'de> Deserialize<'de>` keep compiling; this stand-in never
/// borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_num!(f64, f32, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value.as_seq().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$( stringify!($n) ),+].len();
                if seq.len() != expected {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($t::from_value(&seq[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(usize::from_value(&7usize.to_value()), Ok(7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn options_use_null() {
        assert_eq!(None::<f64>.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<f64>::from_value(&Value::Num(2.0)), Ok(Some(2.0)));
    }

    #[test]
    fn missing_field_reads_as_null() {
        let m = vec![("a".to_string(), Value::Num(1.0))];
        assert_eq!(field(&m, "a"), &Value::Num(1.0));
        assert_eq!(field(&m, "b"), &Value::Null);
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()), Ok(v));
        let t = (1.0f64, 2usize);
        assert_eq!(<(f64, usize)>::from_value(&t.to_value()), Ok(t));
    }
}
