//! Hermetic stand-in for `serde_json`.
//!
//! Renders the serde shim's [`serde::Value`] tree to JSON text and parses
//! it back. Matches upstream conventions the workspace relies on:
//! shortest-round-trip float formatting (Rust's `{}` for `f64` is exactly
//! that), non-finite numbers rendered as `null`, and externally tagged
//! enums handled at the `Value` layer by the derive macros.

#![forbid(unsafe_code)]

pub use serde::Error;

/// Serializes `value` to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a value of type `T` from a JSON string.
pub fn from_str<'de, T: serde::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

// ---- writer ----------------------------------------------------------

fn write_value(v: &serde::Value, out: &mut String) {
    match v {
        serde::Value::Null => out.push_str("null"),
        serde::Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        serde::Value::Num(n) => write_number(*n, out),
        serde::Value::Str(s) => write_string(s, out),
        serde::Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        serde::Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; upstream serde_json errors, but the
        // workspace never serializes non-finite values, so `null` is a
        // safe total fallback.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Integral values print without a fractional part, matching how
        // serde_json renders integer-typed fields.
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<serde::Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", serde::Value::Null),
            Some(b't') => self.parse_literal("true", serde::Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", serde::Value::Bool(false)),
            Some(b'"') => self.parse_string().map(serde::Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: serde::Value) -> Result<serde::Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<serde::Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(serde::Value::Num)
            .map_err(|_| Error::custom(format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Basic-plane scalars only; the workspace never
                            // serializes surrogate pairs.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<serde::Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(serde::Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(serde::Value::Seq(items));
                }
                _ => return Err(Error::custom("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<serde::Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(serde::Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(serde::Value::Map(entries));
                }
                _ => return Err(Error::custom("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(super::to_string(&-0.625f64).unwrap(), "-0.625");
        assert_eq!(super::to_string(&0.1f64).unwrap(), "0.1");
        let v: f64 = super::from_str("0.1").unwrap();
        assert_eq!(v, 0.1);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(super::to_string(&3usize).unwrap(), "3");
        assert_eq!(super::to_string(&-4i32).unwrap(), "-4");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.5f64, -2.0, 3.25];
        let s = super::to_string(&v).unwrap();
        assert_eq!(s, "[1.5,-2,3.25]");
        let back: Vec<f64> = super::from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape() {
        let s = super::to_string(&String::from("a\"b\\c\nd")).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
        let back: String = super::from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<f64> = super::from_str(" [ 1 , 2.5 ] ").unwrap();
        assert_eq!(v, vec![1.0, 2.5]);
    }
}
